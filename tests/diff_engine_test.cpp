// Property tests for the block-scanned, run-length diff engine against the
// seed's word-at-a-time scanner (kept as the oracle):
//  - the block scan and the RLE encode→apply round trip produce byte-
//    identical master/twin/working images for random triples, including
//    runs that straddle 64-byte block boundaries, all-clean and all-dirty
//    pages, and the first/last words of a page;
//  - a dirty-block map that covers every modified block changes nothing
//    but the number of blocks scanned;
//  - a local writer racing with an outgoing flush never corrupts words it
//    does not own.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cashmere/common/rng.hpp"
#include "cashmere/protocol/diff.hpp"

namespace cashmere {
namespace {

using Page = std::vector<std::uint32_t>;

Page MakePage(std::uint64_t seed) {
  Page p(kWordsPerPage);
  SplitMix64 rng(seed);
  for (auto& w : p) {
    w = static_cast<std::uint32_t>(rng.Next());
  }
  return p;
}

std::byte* Bytes(Page& p) { return reinterpret_cast<std::byte*>(p.data()); }

// Applies `mutate` word indices to a working copy and checks that the block
// scanner, the RLE round trip, and the reference word scanner all agree.
void CheckOutgoingEquivalence(const std::vector<std::size_t>& modified, bool flush_update,
                              std::uint64_t seed) {
  Page base = MakePage(seed);
  Page working = base;
  for (const std::size_t i : modified) {
    working[i] ^= 0xDEADBEEFu;
  }

  // Oracle: the seed's word-at-a-time scanner.
  Page twin_ref = base, master_ref = base;
  const std::size_t n_ref =
      ApplyOutgoingDiffWordScan(Bytes(working), Bytes(twin_ref), Bytes(master_ref), flush_update);

  // Block scanner, direct apply.
  Page twin_blk = base, master_blk = base;
  const std::size_t n_blk =
      ApplyOutgoingDiff(Bytes(working), Bytes(twin_blk), Bytes(master_blk), flush_update);
  EXPECT_EQ(n_blk, n_ref);
  EXPECT_EQ(master_blk, master_ref);
  EXPECT_EQ(twin_blk, twin_ref);

  // RLE encode → apply round trip (debug verify on: no racing writer here).
  SetDiffVerifyForTesting(true);
  Page twin_rle = base, master_rle = base;
  DiffBuffer buf;
  DiffScanStats scan;
  const std::size_t n_rle =
      EncodeOutgoingDiff(Bytes(working), Bytes(twin_rle), flush_update, nullptr, buf, &scan);
  SetDiffVerifyForTesting(false);
  ApplyDiffRuns(buf, Bytes(master_rle));
  EXPECT_EQ(n_rle, n_ref);
  EXPECT_EQ(buf.words(), n_ref);
  EXPECT_EQ(master_rle, master_ref);
  EXPECT_EQ(twin_rle, twin_ref);
  EXPECT_EQ(scan.runs, buf.run_count());
  EXPECT_EQ(scan.run_bytes, buf.WireBytes());
  EXPECT_EQ(scan.blocks_scanned, kBlocksPerPage);
  EXPECT_EQ(scan.blocks_skipped, 0u);
  // Runs are maximal: consecutive runs never abut.
  for (std::size_t r = 1; r < buf.run_count(); ++r) {
    EXPECT_GT(buf.run(r).offset_words,
              buf.run(r - 1).offset_words + buf.run(r - 1).nwords);
  }
}

TEST(DiffEngineTest, RunsStraddlingBlockBoundaries) {
  // A run crossing the block 0 / block 1 boundary (words 14..18), one
  // crossing a chunk boundary (word 33..34), the page's first and last
  // words, and an entire block.
  std::vector<std::size_t> mods = {0, 14, 15, 16, 17, 18, 33, 34, kWordsPerPage - 1};
  for (std::size_t i = 0; i < kWordsPerBlock; ++i) {
    mods.push_back(5 * kWordsPerBlock + i);
  }
  CheckOutgoingEquivalence(mods, /*flush_update=*/false, 11);
  CheckOutgoingEquivalence(mods, /*flush_update=*/true, 12);
}

TEST(DiffEngineTest, AllCleanAndAllDirtyPages) {
  CheckOutgoingEquivalence({}, true, 21);
  std::vector<std::size_t> all(kWordsPerPage);
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    all[i] = i;
  }
  CheckOutgoingEquivalence(all, true, 22);
}

TEST(DiffEngineTest, WorstCaseAlternatingWordsFitsBuffer) {
  // Alternating dirty words maximize the run count; DiffBuffer must hold
  // them all without overflow.
  std::vector<std::size_t> alternating;
  for (std::size_t i = 0; i < kWordsPerPage; i += 2) {
    alternating.push_back(i);
  }
  ASSERT_LE(alternating.size(), DiffBuffer::kMaxRuns);
  CheckOutgoingEquivalence(alternating, true, 23);
}

TEST(DiffEngineTest, RandomTriplesMatchWordScanner) {
  SplitMix64 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    // Density sweep: from a handful of words to about half the page.
    const std::size_t count = 1 + rng.NextBelow(1 + trial * 20);
    std::vector<std::size_t> mods;
    mods.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      mods.push_back(rng.NextBelow(kWordsPerPage));
    }
    CheckOutgoingEquivalence(mods, (trial % 2) == 0, 100 + trial);
  }
}

TEST(DiffEngineTest, IncomingMatchesWordScanner) {
  SplitMix64 rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    Page base = MakePage(200 + trial);
    Page incoming = base;
    Page local = base;
    // Disjoint halves, as data-race freedom guarantees.
    for (int k = 0; k < 40; ++k) {
      incoming[rng.NextBelow(kWordsPerPage / 2)] ^= 0x0BADF00Du;
      local[kWordsPerPage / 2 + rng.NextBelow(kWordsPerPage / 2)] ^= 0xFEEDFACEu;
    }
    Page twin_ref = base, working_ref = local;
    const std::size_t n_ref =
        ApplyIncomingDiffWordScan(Bytes(incoming), Bytes(twin_ref), Bytes(working_ref));
    Page twin_blk = base, working_blk = local;
    DiffScanStats scan;
    const std::size_t n_blk =
        ApplyIncomingDiff(Bytes(incoming), Bytes(twin_blk), Bytes(working_blk), &scan);
    EXPECT_EQ(n_blk, n_ref);
    EXPECT_EQ(twin_blk, twin_ref);
    EXPECT_EQ(working_blk, working_ref);
    EXPECT_EQ(scan.blocks_scanned, kBlocksPerPage);
  }
}

TEST(DiffEngineTest, DirtyMapRestrictsScanWithoutChangingResult) {
  SplitMix64 rng(51);
  for (int trial = 0; trial < 20; ++trial) {
    Page base = MakePage(300 + trial);
    Page working = base;
    DirtyBlockMap map;
    map.Clear();
    const std::size_t count = 1 + rng.NextBelow(60);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = rng.NextBelow(kWordsPerPage);
      working[i] ^= 0xA5A5A5A5u;
      map.MarkRange(i * kWordBytes, kWordBytes);
    }
    // The map covers every modified block, so the restricted scan must
    // reproduce the unrestricted result exactly — only cheaper.
    Page twin_full = base, master_full = base;
    const std::size_t n_full =
        ApplyOutgoingDiff(Bytes(working), Bytes(twin_full), Bytes(master_full), true);
    Page twin_map = base, master_map = base;
    DiffScanStats scan;
    const std::size_t n_map = ApplyOutgoingDiff(Bytes(working), Bytes(twin_map),
                                                Bytes(master_map), true, &map, &scan);
    EXPECT_EQ(n_map, n_full);
    EXPECT_EQ(master_map, master_full);
    EXPECT_EQ(twin_map, twin_full);
    EXPECT_EQ(scan.blocks_scanned, static_cast<std::uint64_t>(map.PopCount()));
    EXPECT_EQ(scan.blocks_scanned + scan.blocks_skipped, kBlocksPerPage);
    EXPECT_EQ(CountDiffWords(Bytes(working), Bytes(base), &map),
              CountDiffWordsWordScan(Bytes(working), Bytes(base)));
  }
}

TEST(DiffEngineTest, DensityCutoverBothSidesMatch) {
  // The restricted scan switches from per-block prefiltered scanning to the
  // dense word-at-a-time path once more than kDiffDenseCutoverBlocks blocks
  // are marked. Exercise one count on each side of the threshold: the
  // encodes, applies, and scan stats must be identical to the word-scan
  // oracle either way — the cutover is a host-time strategy change only.
  ASSERT_LT(kDiffDenseCutoverBlocks + 1, kBlocksPerPage);
  for (const std::size_t nblocks :
       {kDiffDenseCutoverBlocks, kDiffDenseCutoverBlocks + 1}) {
    Page base = MakePage(70 + nblocks);
    Page working = base;
    DirtyBlockMap map;
    map.Clear();
    for (std::size_t b = 0; b < nblocks; ++b) {
      // One modified word per marked block, at a varying in-block offset
      // that never hits a block's last word (so runs never merge across
      // block boundaries and the run count stays one per block).
      const std::size_t i = b * kWordsPerBlock + (b % (kWordsPerBlock - 1));
      working[i] ^= 0xC0FFEE00u;
      map.MarkRange(b * kBlockBytes, 1);
    }
    ASSERT_EQ(map.PopCount(), static_cast<int>(nblocks));

    Page twin_ref = base, master_ref = base;
    const std::size_t n_ref =
        ApplyOutgoingDiffWordScan(Bytes(working), Bytes(twin_ref), Bytes(master_ref), true);

    SetDiffVerifyForTesting(true);
    Page twin_rle = base, master_rle = base;
    DiffBuffer buf;
    DiffScanStats scan;
    const std::size_t n_rle =
        EncodeOutgoingDiff(Bytes(working), Bytes(twin_rle), true, &map, buf, &scan);
    SetDiffVerifyForTesting(false);
    ApplyDiffRuns(buf, Bytes(master_rle));
    EXPECT_EQ(n_rle, n_ref);
    EXPECT_EQ(master_rle, master_ref);
    EXPECT_EQ(twin_rle, twin_ref);
    EXPECT_EQ(buf.run_count(), nblocks);  // isolated words: one run per block
    EXPECT_EQ(scan.blocks_scanned, nblocks);
    EXPECT_EQ(scan.blocks_skipped, kBlocksPerPage - nblocks);
  }
}

TEST(DiffEngineTest, ShardMarksTrackGenerationsAndStraddles) {
  DirtyMapShard shard;
  EXPECT_FALSE(shard.AnyMarks());
  // First mark against generation 1: single-map-word fast path.
  shard.MarkRange(1, 0, 1);
  EXPECT_EQ(shard.gen.load(), 1u);
  EXPECT_EQ(shard.bits[0].load(), 1u);
  // A write straddling the block 63 / block 64 boundary spans both map words.
  shard.MarkRange(1, 64 * kBlockBytes - 4, 8);
  EXPECT_EQ(shard.bits[0].load(), 1u | (1ull << 63));
  EXPECT_EQ(shard.bits[1].load(), 1u);
  // The page's last byte marks the last block.
  shard.MarkRange(1, kPageBytes - 1, 1);
  EXPECT_EQ(shard.bits[1].load(), 1u | (1ull << 63));
  EXPECT_TRUE(shard.AnyMarks());
  // A mark against a newer twin generation discards the stale bits first.
  shard.MarkRange(3, 2 * kBlockBytes, kBlockBytes);
  EXPECT_EQ(shard.gen.load(), 3u);
  EXPECT_EQ(shard.bits[0].load(), 1ull << 2);
  EXPECT_EQ(shard.bits[1].load(), 0u);
  // A full-width mask in one map word must not shift by 64 (UB guard).
  DirtyMapShard wide;
  wide.MarkRange(1, 0, 64 * kBlockBytes);
  EXPECT_EQ(wide.bits[0].load(), ~0ull);
  EXPECT_EQ(wide.bits[1].load(), 0u);
}

TEST(DiffEngineTest, MarkRangeCoversStraddlingWrites) {
  DirtyBlockMap map;
  map.Clear();
  // A 12-byte write starting 4 bytes before a block boundary marks both.
  map.MarkRange(kBlockBytes - 4, 12);
  EXPECT_TRUE(map.Test(0));
  EXPECT_TRUE(map.Test(1));
  EXPECT_FALSE(map.Test(2));
  EXPECT_EQ(map.PopCount(), 2);
  map.MarkRange(kPageBytes - 1, 1);
  EXPECT_TRUE(map.Test(kBlocksPerPage - 1));
  map.MarkAll();
  EXPECT_EQ(map.PopCount(), static_cast<int>(kBlocksPerPage));
  EXPECT_TRUE(map.Any());
  map.Clear();
  EXPECT_FALSE(map.Any());
}

TEST(DiffEngineTest, ConcurrentWriterNeverCorruptsUnrelatedWords) {
  // A local writer hammers the first half of the page while repeated
  // flush-update scans run over the whole page. The scan may or may not
  // catch any individual racing store (the writer's own release re-flushes
  // those), but words the writer does not own must reach the master with
  // exactly their original working values, and every master word the
  // flusher writes must be a value the working copy actually held.
  Page base = MakePage(61);
  Page working = base;
  Page twin = base;
  Page master = base;
  // Deterministic second-half modifications the flusher must move intact.
  for (std::size_t i = kWordsPerPage / 2; i < kWordsPerPage; i += 3) {
    working[i] = 0x51000000u | static_cast<std::uint32_t>(i);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    SplitMix64 rng(62);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = rng.NextBelow(kWordsPerPage / 2);
      StoreWord32Relaxed(Bytes(working), i, 0x77000000u | static_cast<std::uint32_t>(i));
    }
  });
  for (int round = 0; round < 200; ++round) {
    ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master), true);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::size_t i = 0; i < kWordsPerPage; ++i) {
    if (i >= kWordsPerPage / 2) {
      const std::uint32_t expect =
          (i % 3 == (kWordsPerPage / 2) % 3) ? 0x51000000u | static_cast<std::uint32_t>(i)
                                             : base[i];
      EXPECT_EQ(master[i], expect) << "word " << i;
    } else {
      // Racing half: master holds either the original or a writer value.
      const bool original = master[i] == base[i];
      const bool written = master[i] == (0x77000000u | static_cast<std::uint32_t>(i));
      EXPECT_TRUE(original || written) << "word " << i << " corrupted: " << master[i];
    }
  }
  // A final quiescent flush converges master to the working copy.
  ApplyOutgoingDiff(Bytes(working), Bytes(twin), Bytes(master), true);
  EXPECT_EQ(master, working);
  EXPECT_EQ(twin, working);
}

}  // namespace
}  // namespace cashmere
