// Heat diffusion on a 2D plate — the class of iterative PDE solvers that
// motivates software DSM (the paper's SOR benchmark is the same shape).
//
// A plate with a hot edge is relaxed with a Jacobi stencil. Rows are
// banded across processors; only band-boundary pages are actively shared,
// so the two-level protocol keeps almost all coherence traffic inside SMP
// nodes. The example runs the same problem under Cashmere-2L and the
// one-level protocol and compares the communication statistics.
#include <cstdio>
#include <vector>

#include "cashmere/runtime/runtime.hpp"

namespace {

constexpr int kRows = 128;
constexpr int kCols = 1024;  // one page per row: clean banding
constexpr int kIters = 30;

double RunOnce(cashmere::ProtocolVariant variant, cashmere::Stats* stats_out) {
  using namespace cashmere;
  Config cfg;
  cfg.protocol = variant;
  cfg.nodes = 4;
  cfg.procs_per_node = 4;
  cfg.heap_bytes = 2 * kRows * kCols * sizeof(double) + (1 << 20);
  Runtime rt(cfg);

  const GlobalAddr cur = rt.heap().AllocPageAligned(kRows * kCols * sizeof(double));
  const GlobalAddr nxt = rt.heap().AllocPageAligned(kRows * kCols * sizeof(double));
  rt.Run([&](Context& ctx) {
    double* a = ctx.Ptr<double>(cur);
    double* b = ctx.Ptr<double>(nxt);
    if (ctx.proc() == 0) {
      for (int j = 0; j < kCols; ++j) {
        a[j] = b[j] = 100.0;  // hot top edge
      }
      for (int i = 1; i < kRows; ++i) {
        for (int j = 0; j < kCols; ++j) {
          a[static_cast<std::size_t>(i) * kCols + j] = 0.0;
        }
      }
    }
    ctx.Barrier(0);
    ctx.InitDone();

    const int procs = ctx.total_procs();
    const int band = (kRows + procs - 1) / procs;
    const int begin = ctx.proc() * band < kRows ? ctx.proc() * band : kRows;
    const int end = begin + band < kRows ? begin + band : kRows;
    double* src = a;
    double* dst = b;
    for (int it = 0; it < kIters; ++it) {
      ctx.Poll();
      for (int i = begin; i < end; ++i) {
        if (i == 0 || i == kRows - 1) {
          continue;
        }
        for (int j = 1; j < kCols - 1; ++j) {
          const std::size_t k = static_cast<std::size_t>(i) * kCols + j;
          dst[k] = 0.25 * (src[k - kCols] + src[k + kCols] + src[k - 1] + src[k + 1]);
        }
      }
      ctx.Barrier(0);
      std::swap(src, dst);
    }
  });

  std::vector<double> plate(static_cast<std::size_t>(kRows) * kCols);
  rt.CopyOut(kIters % 2 == 0 ? cur : nxt, plate.data(), plate.size() * sizeof(double));
  double heat = 0.0;
  for (const double t : plate) {
    heat += t;
  }
  if (stats_out != nullptr) {
    *stats_out = rt.report().total;
  }
  return heat;
}

}  // namespace

int main() {
  using namespace cashmere;
  Stats two_level;
  Stats one_level;
  const double heat2 = RunOnce(ProtocolVariant::kTwoLevel, &two_level);
  const double heat1 = RunOnce(ProtocolVariant::kOneLevelDiff, &one_level);

  std::printf("Heat diffusion, %dx%d plate, %d iterations, 16 processors\n", kRows, kCols,
              kIters);
  std::printf("  total heat: 2L=%.3f  1LD=%.3f  (%s)\n\n", heat2, heat1,
              heat2 == heat1 ? "identical" : "MISMATCH");
  std::printf("  %-22s %12s %12s\n", "statistic", "Cashmere-2L", "1-level");
  const Counter interesting[] = {Counter::kPageTransfers, Counter::kWriteNotices,
                                 Counter::kDirectoryUpdates, Counter::kDataBytes};
  for (const Counter c : interesting) {
    std::printf("  %-22s %12llu %12llu\n", CounterName(c),
                static_cast<unsigned long long>(two_level.Get(c)),
                static_cast<unsigned long long>(one_level.Get(c)));
  }
  std::printf(
      "\nThe two-level protocol coalesces intra-node sharing in hardware, cutting\n"
      "page transfers and data moved — the paper's central claim.\n");
  return heat2 == heat1 ? 0 : 1;
}
