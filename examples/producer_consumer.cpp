// Pipelined producer/consumer with flags — the single-producer/multiple-
// consumer pattern of the paper's Gauss benchmark.
//
// Processor 0 produces batches of work; per-batch flags release the
// consumers, which process the batch and post their results to
// page-separated slots; the producer folds the results into the next
// batch. Flags carry release/acquire semantics: setting a flag flushes the
// producer's modifications, waiting on it invalidates stale copies.
#include <cstdio>

#include "cashmere/runtime/runtime.hpp"

int main() {
  using namespace cashmere;
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 4;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 4 * 1024 * 1024;

  constexpr int kBatches = 16;
  constexpr int kBatchWords = 2048;

  Runtime rt(cfg);
  const GlobalAddr batch_addr = rt.heap().AllocPageAligned(kBatchWords * sizeof(double));
  const GlobalAddr result_addr =
      rt.heap().AllocPageAligned(static_cast<std::size_t>(kMaxProcs) * kPageBytes);

  rt.Run([&](Context& ctx) {
    double* batch = ctx.Ptr<double>(batch_addr);
    const int procs = ctx.total_procs();
    const int me = ctx.proc();
    double* my_slot =
        ctx.Ptr<double>(result_addr + static_cast<GlobalAddr>(me) * kPageBytes);

    double carry = 1.0;
    for (int b = 1; b <= kBatches; ++b) {
      if (me == 0) {
        // Produce: fill the batch (reads consumers' previous results).
        double feedback = 0.0;
        if (b > 1) {
          for (int p = 1; p < procs; ++p) {
            feedback +=
                *ctx.Ptr<double>(result_addr + static_cast<GlobalAddr>(p) * kPageBytes);
          }
        }
        for (int i = 0; i < kBatchWords; ++i) {
          batch[i] = carry + feedback * 1e-6 + i * 0.001;
        }
        carry += 0.5;
        ctx.FlagSet(0, static_cast<std::uint64_t>(b));  // release the batch
      } else {
        ctx.FlagWaitGe(0, static_cast<std::uint64_t>(b));  // acquire it
        double sum = 0.0;
        for (int i = me - 1; i < kBatchWords; i += procs - 1) {
          sum += batch[i] * batch[i];
        }
        *my_slot = sum;
        ctx.FlagSet(me, static_cast<std::uint64_t>(b));  // publish the result
      }
      if (me == 0) {
        for (int p = 1; p < procs; ++p) {
          ctx.FlagWaitGe(p, static_cast<std::uint64_t>(b));  // gather
        }
      }
      ctx.Poll();
    }
    ctx.Barrier(0);
    if (me == 0) {
      double total = 0.0;
      for (int p = 1; p < procs; ++p) {
        total += *ctx.Ptr<double>(result_addr + static_cast<GlobalAddr>(p) * kPageBytes);
      }
      std::printf("final batch energy: %.6f\n", total);
    }
  });

  const Stats& s = rt.report().total;
  std::printf("flag acquires: %llu, page transfers: %llu, write notices: %llu\n",
              static_cast<unsigned long long>(s.Get(Counter::kFlagAcquires)),
              static_cast<unsigned long long>(s.Get(Counter::kPageTransfers)),
              static_cast<unsigned long long>(s.Get(Counter::kWriteNotices)));
  std::printf("virtual execution time: %.3f ms\n", rt.report().ExecTimeSec() * 1e3);
  return 0;
}
