// Protocol comparison on one workload: a parallel histogram + reduction
// run under all five protocol variants, printing each protocol's virtual
// execution time and key statistics side by side. Demonstrates the
// library's ablation workflow (the same code path the paper's Section 3.3
// comparisons use).
#include <cstdio>

#include "cashmere/runtime/runtime.hpp"

namespace {

struct Outcome {
  const char* label;
  double exec_ms;
  cashmere::Stats stats;
  long checksum;
};

Outcome RunOnce(const char* label, cashmere::ProtocolVariant variant) {
  using namespace cashmere;
  Config cfg;
  cfg.protocol = variant;
  cfg.nodes = 4;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 8 * 1024 * 1024;

  constexpr int kItems = 200000;
  constexpr int kBuckets = 512;

  Runtime rt(cfg);
  const GlobalAddr items = rt.AllocArray<int>(kItems);
  const GlobalAddr histogram = rt.heap().AllocPageAligned(kBuckets * sizeof(long));

  rt.Run([&](Context& ctx) {
    int* x = ctx.Ptr<int>(items);
    long* h = ctx.Ptr<long>(histogram);
    const int procs = ctx.total_procs();
    if (ctx.proc() == 0) {
      std::uint64_t s = 88172645463325252ull;
      for (int i = 0; i < kItems; ++i) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        x[i] = static_cast<int>(s % kBuckets);
      }
    }
    ctx.Barrier(0);
    ctx.InitDone();

    // Local histogram, then lock-striped merge into the shared one.
    long local[kBuckets] = {};
    for (int i = ctx.proc(); i < kItems; i += procs) {
      local[x[i]] += 1;
    }
    for (int stripe = 0; stripe < 8; ++stripe) {
      const int lock_id = (stripe + ctx.proc()) % 8;  // stagger to cut contention
      ctx.LockAcquire(lock_id);
      for (int b = lock_id; b < kBuckets; b += 8) {
        h[b] += local[b];
      }
      ctx.LockRelease(lock_id);
      ctx.Poll();
    }
    ctx.Barrier(0);
  });

  long total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    total += rt.Read<long>(histogram + static_cast<cashmere::GlobalAddr>(b) * sizeof(long)) *
             (b % 7 + 1);
  }
  return {label, rt.report().ExecTimeSec() * 1e3, rt.report().total, total};
}

}  // namespace

int main() {
  using namespace cashmere;
  const Outcome results[] = {
      RunOnce("2L", ProtocolVariant::kTwoLevel),
      RunOnce("2LS", ProtocolVariant::kTwoLevelShootdown),
      RunOnce("2L-lock", ProtocolVariant::kTwoLevelGlobalLock),
      RunOnce("1LD", ProtocolVariant::kOneLevelDiff),
      RunOnce("1L", ProtocolVariant::kOneLevelWriteDouble),
  };
  std::printf("Histogram of 200k items into 512 buckets, 8 processors\n\n");
  std::printf("%-9s %10s %12s %12s %12s %12s\n", "protocol", "exec(ms)", "transfers",
              "wr.notices", "dir.updates", "checksum");
  for (const Outcome& o : results) {
    std::printf("%-9s %10.2f %12llu %12llu %12llu %12ld\n", o.label, o.exec_ms,
                static_cast<unsigned long long>(o.stats.Get(Counter::kPageTransfers)),
                static_cast<unsigned long long>(o.stats.Get(Counter::kWriteNotices)),
                static_cast<unsigned long long>(o.stats.Get(Counter::kDirectoryUpdates)),
                o.checksum);
  }
  bool all_match = true;
  for (const Outcome& o : results) {
    all_match = all_match && o.checksum == results[0].checksum;
  }
  std::printf("\nresults %s across protocols\n", all_match ? "IDENTICAL" : "DIFFER");
  return all_match ? 0 : 1;
}
