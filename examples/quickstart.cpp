// Quickstart: the smallest complete Cashmere-2L program.
//
// Creates an emulated 4-node x 2-processor cluster, allocates a shared
// array, fills it in parallel, sums it with a lock-protected accumulator,
// and prints the protocol statistics of the run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cashmere/runtime/runtime.hpp"

int main() {
  using namespace cashmere;

  // 1. Configure the cluster: 4 SMP nodes x 2 processors, Cashmere-2L.
  Config cfg;
  cfg.protocol = ProtocolVariant::kTwoLevel;
  cfg.nodes = 4;
  cfg.procs_per_node = 2;
  cfg.heap_bytes = 4 * 1024 * 1024;

  Runtime rt(cfg);

  // 2. Allocate shared data (before the parallel region, as the paper's
  //    applications do). Allocation returns heap offsets that every
  //    processor translates through its own view.
  constexpr int kN = 100000;
  const GlobalAddr numbers = rt.AllocArray<double>(kN);
  const GlobalAddr total = rt.AllocArray<double>(1);

  // 3. Run one function on every emulated processor.
  rt.Run([&](Context& ctx) {
    double* x = ctx.Ptr<double>(numbers);

    // Data-parallel phase: each processor fills its chunk. Page faults
    // drive the coherence protocol transparently.
    const int chunk = (kN + ctx.total_procs() - 1) / ctx.total_procs();
    const int begin = ctx.proc() * chunk;
    const int end = begin + chunk < kN ? begin + chunk : kN;
    for (int i = begin; i < end; ++i) {
      x[i] = 1.0 / ((i + 1) * (i + 2));  // telescoping: sums to n/(n+1)
    }

    // Barriers separate phases (release consistency: all writes before the
    // barrier are visible to all processors after it).
    ctx.Barrier(0);

    // Reduction phase: local sum, then a lock-protected global update —
    // the migratory sharing pattern.
    double local = 0.0;
    for (int i = begin; i < end; ++i) {
      local += x[i];
    }
    ctx.LockAcquire(0);
    *ctx.Ptr<double>(total) += local;
    ctx.LockRelease(0);

    ctx.Barrier(0);
    if (ctx.proc() == 0) {
      std::printf("sum = %.9f (expected %.9f)\n", *ctx.Ptr<double>(total),
                  static_cast<double>(kN) / (kN + 1));
    }
  });

  // 4. Inspect the run: every Table-3-style statistic is available.
  std::printf("\nProtocol statistics (%s):\n%s", cfg.Describe().c_str(),
              rt.report().ToString().c_str());
  return 0;
}
